// Command bench measures the batched engines against their single-sample
// reference paths and emits JSON so the perf trajectory is tracked from run
// to run:
//
//   - mode "inference" (BENCH_inference.json): policy.RL serving throughput,
//     single-sample versus the batched GEMM engine, at the paper's network
//     configuration and the Quick test configuration.
//   - mode "training" (BENCH_training.json): A3C training steps/sec,
//     per-sample updates with mutex pulls versus the batched training engine
//     with snapshot pulls, at the same configurations (paper: 128 filters,
//     NSteps 7).
//   - mode "evaluation" (BENCH_evaluation.json): the Fig. 7 horizon sweep on
//     one core, per-window reference engine versus the single-pass sweep
//     engine, at the experiments Quick and Full configurations (random
//     agent — runtime is weight-independent).
//
// Every mode additionally emits worker-scaling rows: the fast engine rerun
// at each -scale-workers count with GOMAXPROCS pinned to that count, tagged
// with a scaling_efficiency field ((throughput_w / throughput_base) × base/w,
// so perfect linear scaling reads 1.0). Every row also records the effective
// gomaxprocs it ran under, with oversubscribed=true when that width exceeds
// the machine's real cores — on a single-core container a "workers=8" row
// measures goroutine multiplexing, not parallel scaling, and says so.
//
// Training mode additionally emits an envs-per-worker ladder: the vectorized
// lockstep engine (A3CConfig.EnvsPerWorker) rerun at each -envs width on one
// worker, tagged with a speedup_vs_e1 field — unlike the worker ladder this
// is a single-core batching lever, so its gains are real even when
// oversubscribed would flag the worker rows.
//
// Usage:
//
//	bench                        # inference mode, writes BENCH_inference.json
//	bench -mode training         # writes BENCH_training.json
//	bench -mode evaluation       # writes BENCH_evaluation.json
//	bench -mode all              # all files
//	bench -o results.json        # alternate output path; with -mode all the
//	                             # path is a prefix (results_inference.json …)
//	bench -scale-workers 1,2,4   # alternate scaling ladder ("" disables)
//	bench -envs 1,8,32           # alternate envs-per-worker ladder ("" disables)
//	bench -files 1024 -days 28   # heavier inference workload
//	bench -cpuprofile cpu.pprof  # profile the benchmarked paths
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"minicost/internal/costmodel"
	"minicost/internal/experiments"
	"minicost/internal/mdp"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/prof"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// result is one (config, engine, workers) measurement.
type result struct {
	Config     string  `json:"config"`
	HistLen    int     `json:"hist_len"`
	Filters    int     `json:"filters"`
	Hidden     int     `json:"hidden"`
	Files      int     `json:"files"`
	Days       int     `json:"days"`
	Engine     string  `json:"engine"` // "single" or "batched"
	Workers    int     `json:"workers"`
	Rounds     int     `json:"rounds"`
	NsPerDec   float64 `json:"ns_per_decision"`
	DecPerSec  float64 `json:"decisions_per_second"`
	TotalMS    float64 `json:"total_ms"`
	SpeedupVs1 float64 `json:"speedup_vs_single,omitempty"`
	// ScalingEfficiency is set on worker-scaling rows: throughput relative
	// to the ladder's base worker count, normalized so linear scaling is 1.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// GoMaxProcs is the effective scheduler width this row ran under (the
	// pinned ladder width, or the ambient process width elsewhere);
	// Oversubscribed flags rows whose width exceeds the machine's real
	// cores, where the row measures multiplexing rather than scaling.
	GoMaxProcs     int  `json:"gomaxprocs"`
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// trainResult is one (config, engine) training measurement.
type trainResult struct {
	Config      string  `json:"config"`
	HistLen     int     `json:"hist_len"`
	Filters     int     `json:"filters"`
	Hidden      int     `json:"hidden"`
	NSteps      int     `json:"n_steps"`
	Workers     int     `json:"workers"`
	Engine      string  `json:"engine"` // "single", "batched" or "vectorized"
	Rounds      int     `json:"rounds"`
	Steps       int64   `json:"steps"`
	StepsPerSec float64 `json:"steps_per_second"`
	TotalMS     float64 `json:"total_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_single,omitempty"`
	// EnvsPerWorker is set on envs-ladder rows: the lockstep width of the
	// vectorized rollout engine; SpeedupVsE1 is the row's throughput over
	// the ladder's E=1 row.
	EnvsPerWorker int     `json:"envs_per_worker,omitempty"`
	SpeedupVsE1   float64 `json:"speedup_vs_e1,omitempty"`
	// ScalingEfficiency is set on worker-scaling rows; see result.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// GoMaxProcs / Oversubscribed: see result.
	GoMaxProcs     int  `json:"gomaxprocs"`
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// evalResult is one (config, engine, workers) horizon-sweep measurement.
type evalResult struct {
	Config     string  `json:"config"`
	Files      int     `json:"files"`
	Days       int     `json:"days"`
	Horizons   []int   `json:"horizons"`
	Engine     string  `json:"engine"` // "perwindow" or "swept"
	Workers    int     `json:"workers"`
	Rounds     int     `json:"rounds"`
	TotalMS    float64 `json:"total_ms"`
	SpeedupVs1 float64 `json:"speedup_vs_perwindow,omitempty"`
	// ScalingEfficiency is set on worker-scaling rows; see result.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// GoMaxProcs / Oversubscribed: see result.
	GoMaxProcs     int  `json:"gomaxprocs"`
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

type report struct {
	Benchmark  string          `json:"benchmark"`
	GoMaxProc  int             `json:"gomaxprocs"`
	Results    []result        `json:"results,omitempty"`
	Training   []trainResult   `json:"training,omitempty"`
	Evaluation []evalResult    `json:"evaluation,omitempty"`
	Serving    []servingResult `json:"serving,omitempty"`
}

// benchConfigs are the shared network shapes: the paper's architecture and
// the Quick test configuration.
var benchConfigs = []struct {
	name string
	net  rl.NetConfig
}{
	{"paper128", rl.NetConfig{HistLen: 14, Filters: 128, Kernel: 4, Stride: 1, Hidden: 128}},
	{"quick16", rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}},
}

func main() {
	var (
		mode       = flag.String("mode", "inference", `"inference", "training", "evaluation", "serving" or "all"`)
		out        = flag.String("o", "", "output JSON path (default BENCH_<mode>.json; a prefix with -mode all)")
		files      = flag.Int("files", 512, "files in the inference bench trace")
		days       = flag.Int("days", 14, "trace days")
		rounds     = flag.Int("rounds", 3, "timed rounds per measurement (best is kept)")
		trainSteps = flag.Int64("train-steps", 1024, "environment steps per training round")
		workers    = flag.Int("workers", 1, "A3C workers in the training bench")
		scaleFlag  = flag.String("scale-workers", "1,2,4,8", "comma-separated worker counts for the scaling rows; empty disables them")
		envsFlag   = flag.String("envs", "1,4,16,64", "comma-separated envs-per-worker ladder for the training bench; empty disables it")
		serveFiles = flag.String("serve-files", "100000,1000000", "comma-separated tracked-file populations for the serving bench")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	envs, err := parseScale(*envsFlag)
	if err != nil {
		fatal(fmt.Errorf("-envs: %w", err))
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	all := *mode == "all"
	runInference := *mode == "inference" || all
	runTraining := *mode == "training" || all
	runEvaluation := *mode == "evaluation" || all
	runServing := *mode == "serving" || all
	if !runInference && !runTraining && !runEvaluation && !runServing {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if runInference {
		writeReport(outPath(*out, "inference", all), benchInference(*files, *days, *rounds, scale))
	}
	if runTraining {
		writeReport(outPath(*out, "training", all), benchTraining(*trainSteps, *workers, *rounds, scale, envs))
	}
	if runEvaluation {
		writeReport(outPath(*out, "evaluation", all), benchEvaluation(*rounds, scale))
	}
	if runServing {
		populations, err := parseScale(*serveFiles)
		if err != nil {
			fatal(fmt.Errorf("-serve-files: %w", err))
		}
		if len(populations) == 0 {
			fatal(fmt.Errorf("-serve-files: at least one population required"))
		}
		writeReport(outPath(*out, "serving", all), benchServing(populations, *rounds))
	}

	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// outPath resolves the report path for one mode. Without -o it is the
// standard BENCH_<mode>.json. With -o in a single mode it is the given path
// verbatim; under -mode all the path acts as a prefix and "_<mode>" is
// inserted before the extension (results.json → results_inference.json, …)
// so the three reports never overwrite each other.
func outPath(out, mode string, all bool) string {
	if out == "" {
		return "BENCH_" + mode + ".json"
	}
	if !all {
		return out
	}
	ext := filepath.Ext(out)
	if ext == "" {
		ext = ".json"
	}
	return strings.TrimSuffix(out, filepath.Ext(out)) + "_" + mode + ext
}

// parseScale parses the -scale-workers ladder ("1,2,4,8"). An empty flag
// disables scaling rows.
func parseScale(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ladder := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-scale-workers: bad worker count %q", p)
		}
		ladder = append(ladder, w)
	}
	return ladder, nil
}

// scaledRun pins GOMAXPROCS to the row's worker count for the duration of
// one measurement, so a scaling row measures real scheduler parallelism
// rather than goroutine multiplexing on the ambient process width.
func scaledRun(workers int, measure func() time.Duration) time.Duration {
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	return measure()
}

// efficiency normalizes a scaling row against the ladder's base row:
// (throughput_w / throughput_base) × base/w, so linear scaling reads 1.0.
func efficiency(throughput, baseThroughput float64, workers, baseWorkers int) float64 {
	if baseThroughput <= 0 {
		return 0
	}
	return (throughput / baseThroughput) * float64(baseWorkers) / float64(workers)
}

// stampProcs returns the honesty pair for one row: the effective scheduler
// width it ran under and whether that width oversubscribes the machine's
// real cores (in which case the row measures goroutine multiplexing, not
// parallel scaling — the single-core CI containers hit this on every ladder
// row past w=1).
func stampProcs(gmp int) (int, bool) { return gmp, gmp > runtime.NumCPU() }

func benchInference(files, days, rounds int, scale []int) report {
	rep := report{Benchmark: "inference", GoMaxProc: runtime.GOMAXPROCS(0)}
	for _, cfg := range benchConfigs {
		agent := rl.NewAgent(cfg.net, cfg.net.BuildActor(rng.New(7)))
		gen := trace.DefaultGenConfig()
		gen.NumFiles = files
		gen.Days = days
		gen.Seed = 7
		tr, err := trace.Generate(gen)
		if err != nil {
			fatal(err)
		}
		m := costmodel.New(pricing.Azure())
		decisions := float64(tr.NumFiles() * tr.Days)
		mkResult := func(engine string, workers, gmp int, best time.Duration) result {
			res := result{
				Config: cfg.name, HistLen: cfg.net.HistLen, Filters: cfg.net.Filters,
				Hidden: cfg.net.Hidden, Files: tr.NumFiles(), Days: tr.Days,
				Engine: engine, Workers: workers, Rounds: rounds,
				NsPerDec:  float64(best.Nanoseconds()) / decisions,
				DecPerSec: decisions / best.Seconds(),
				TotalMS:   float64(best.Microseconds()) / 1000,
			}
			res.GoMaxProcs, res.Oversubscribed = stampProcs(gmp)
			return res
		}

		single := measure(policy.RL{Agent: agent, SingleSample: true, Workers: 1}, tr, m, rounds)
		batched := measure(policy.RL{Agent: agent, Workers: 1}, tr, m, rounds)

		for _, r := range []struct {
			engine string
			best   time.Duration
		}{{"single", single}, {"batched", batched}} {
			res := mkResult(r.engine, 1, runtime.GOMAXPROCS(0), r.best)
			if r.engine == "batched" {
				res.SpeedupVs1 = single.Seconds() / r.best.Seconds()
			}
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-9s %-8s %10.0f ns/decision  %12.0f decisions/s", cfg.name, r.engine, res.NsPerDec, res.DecPerSec)
			if res.SpeedupVs1 > 0 {
				fmt.Printf("  %.2fx vs single", res.SpeedupVs1)
			}
			fmt.Println()
		}

		// Worker-scaling ladder: the batched engine rerun at each worker
		// count with GOMAXPROCS pinned to match.
		var baseThr float64
		for i, w := range scale {
			best := scaledRun(w, func() time.Duration {
				return measure(policy.RL{Agent: agent, Workers: w}, tr, m, rounds)
			})
			res := mkResult("batched", w, w, best)
			if i == 0 {
				baseThr = res.DecPerSec
			}
			res.ScalingEfficiency = efficiency(res.DecPerSec, baseThr, w, scale[0])
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-9s %-8s %10.0f ns/decision  %12.0f decisions/s  workers=%d eff=%.2f\n",
				cfg.name, "batched", res.NsPerDec, res.DecPerSec, w, res.ScalingEfficiency)
		}
	}
	return rep
}

func benchTraining(steps int64, workers, rounds int, scale, envs []int) report {
	rep := report{Benchmark: "training", GoMaxProc: runtime.GOMAXPROCS(0)}
	for _, cfg := range benchConfigs {
		// The training workload mirrors the rl bench tests: a small polar
		// trace keeps env stepping cheap so network passes dominate.
		gen := trace.DefaultGenConfig()
		gen.NumFiles = 16
		gen.Days = 14
		gen.Seed = 7
		tr, err := trace.Generate(gen)
		if err != nil {
			fatal(err)
		}
		m := costmodel.New(pricing.Azure())
		mkResult := func(engine string, w, gmp int, n int64, best time.Duration) trainResult {
			res := trainResult{
				Config: cfg.name, HistLen: cfg.net.HistLen, Filters: cfg.net.Filters,
				Hidden: cfg.net.Hidden, NSteps: rl.DefaultA3CConfig().NSteps,
				Workers: w, Engine: engine, Rounds: rounds, Steps: n,
				StepsPerSec: float64(n) / best.Seconds(),
				TotalMS:     float64(best.Microseconds()) / 1000,
			}
			res.GoMaxProcs, res.Oversubscribed = stampProcs(gmp)
			return res
		}

		single := measureTraining(cfg.net, tr, m, true, steps, workers, 1, rounds)
		batched := measureTraining(cfg.net, tr, m, false, steps, workers, 1, rounds)

		for _, r := range []struct {
			engine string
			best   time.Duration
		}{{"single", single}, {"batched", batched}} {
			res := mkResult(r.engine, workers, runtime.GOMAXPROCS(0), steps, r.best)
			if r.engine == "batched" {
				res.SpeedupVs1 = single.Seconds() / r.best.Seconds()
			}
			rep.Training = append(rep.Training, res)
			fmt.Printf("%-9s %-10s %12.0f steps/s", cfg.name, r.engine, res.StepsPerSec)
			if res.SpeedupVs1 > 0 {
				fmt.Printf("  %.2fx vs single", res.SpeedupVs1)
			}
			fmt.Println()
		}

		// Worker-scaling ladder: the batched trainer rerun with w A3C
		// workers and GOMAXPROCS pinned to match, so the rows measure the
		// asynchronous fan-out end to end (collection and update included).
		var baseThr float64
		for i, w := range scale {
			best := scaledRun(w, func() time.Duration {
				return measureTraining(cfg.net, tr, m, false, steps, w, 1, rounds)
			})
			res := mkResult("batched", w, w, steps, best)
			if i == 0 {
				baseThr = res.StepsPerSec
			}
			res.ScalingEfficiency = efficiency(res.StepsPerSec, baseThr, w, scale[0])
			rep.Training = append(rep.Training, res)
			fmt.Printf("%-9s %-10s %12.0f steps/s  workers=%d eff=%.2f\n",
				cfg.name, "batched", res.StepsPerSec, w, res.ScalingEfficiency)
		}

		// Envs-per-worker ladder: the vectorized lockstep engine at one
		// worker on the ambient scheduler width — vectorization batches
		// network passes on a single core rather than fanning out
		// goroutines, so these rows are meaningful even where the worker
		// ladder is oversubscribed. Wide rows get their step budget raised
		// so every row still runs a healthy number of updates.
		var e1Thr float64
		for i, e := range envs {
			rollout := int64(e * rl.DefaultA3CConfig().NSteps)
			envSteps := steps
			if min := 16 * rollout; envSteps < min {
				envSteps = min
			}
			engine := "batched" // E ≤ 1 dispatches to the classic loop
			if e > 1 {
				engine = "vectorized"
			}
			best := measureTraining(cfg.net, tr, m, false, envSteps, 1, e, rounds)
			res := mkResult(engine, 1, runtime.GOMAXPROCS(0), envSteps, best)
			res.EnvsPerWorker = e
			if i == 0 {
				e1Thr = res.StepsPerSec
			} else {
				res.SpeedupVsE1 = res.StepsPerSec / e1Thr
			}
			rep.Training = append(rep.Training, res)
			fmt.Printf("%-9s %-10s %12.0f steps/s  envs=%d", cfg.name, engine, res.StepsPerSec, e)
			if res.SpeedupVsE1 > 0 {
				fmt.Printf("  %.2fx vs E=1", res.SpeedupVsE1)
			}
			fmt.Println()
		}
	}
	return rep
}

// benchEvaluation times the Fig. 7 horizon sweep on one core: the
// per-window reference engine (re-assign + re-price every method at every
// horizon) versus the single-pass sweep engine. A random agent stands in for
// the trained one — equivalence and runtime are weight-independent — so the
// bench measures evaluation, not training.
func benchEvaluation(rounds int, scale []int) report {
	rep := report{Benchmark: "evaluation", GoMaxProc: runtime.GOMAXPROCS(0)}
	for _, lc := range []struct {
		name string
		cfg  experiments.Config
	}{{"quick", experiments.Quick()}, {"full", experiments.Full()}} {
		cfg := lc.cfg
		// One worker everywhere: the speedup must come from the algorithm,
		// not from the sweep engine's cross-method parallelism.
		cfg.Workers = 1
		l, err := experiments.NewLab(cfg)
		if err != nil {
			fatal(err)
		}
		l.SetAgent(rl.NewAgent(cfg.Net, cfg.Net.BuildActor(rng.New(7))))

		var horizons []int
		run := func(swept bool) time.Duration {
			if swept {
				l.ResetEvalCache()
			}
			start := time.Now()
			var r *experiments.Fig7Result
			var err error
			if swept {
				r, err = l.Fig7()
			} else {
				r, err = l.Fig7Reference()
			}
			if err != nil {
				fatal(err)
			}
			d := time.Since(start)
			horizons = r.Days
			return d
		}

		var perWindowBest time.Duration
		for _, en := range []struct {
			name  string
			swept bool
		}{{"perwindow", false}, {"swept", true}} {
			run(en.swept) // warm-up
			best := time.Duration(0)
			for i := 0; i < rounds; i++ {
				if d := run(en.swept); best == 0 || d < best {
					best = d
				}
			}
			res := evalResult{
				Config: lc.name, Files: l.Test.NumFiles(), Days: l.Test.Days,
				Horizons: horizons, Engine: en.name, Workers: 1, Rounds: rounds,
				TotalMS: float64(best.Microseconds()) / 1000,
			}
			res.GoMaxProcs, res.Oversubscribed = stampProcs(runtime.GOMAXPROCS(0))
			if en.swept {
				res.SpeedupVs1 = perWindowBest.Seconds() / best.Seconds()
			} else {
				perWindowBest = best
			}
			rep.Evaluation = append(rep.Evaluation, res)
			fmt.Printf("%-9s %-10s %10.1f ms/sweep", lc.name, en.name, res.TotalMS)
			if res.SpeedupVs1 > 0 {
				fmt.Printf("  %.2fx vs perwindow", res.SpeedupVs1)
			}
			fmt.Println()
		}

		// Worker-scaling ladder: the sweep engine rerun with the lab's
		// evaluation parallelism at each worker count, GOMAXPROCS pinned to
		// match. Throughput basis is sweeps/second (inverse wall time).
		var baseThr float64
		for i, w := range scale {
			l.Cfg.Workers = w
			best := scaledRun(w, func() time.Duration {
				run(true) // warm-up at this width
				b := time.Duration(0)
				for r := 0; r < rounds; r++ {
					if d := run(true); b == 0 || d < b {
						b = d
					}
				}
				return b
			})
			res := evalResult{
				Config: lc.name, Files: l.Test.NumFiles(), Days: l.Test.Days,
				Horizons: horizons, Engine: "swept", Workers: w, Rounds: rounds,
				TotalMS: float64(best.Microseconds()) / 1000,
			}
			res.GoMaxProcs, res.Oversubscribed = stampProcs(w)
			thr := 1 / best.Seconds()
			if i == 0 {
				baseThr = thr
			}
			res.ScalingEfficiency = efficiency(thr, baseThr, w, scale[0])
			rep.Evaluation = append(rep.Evaluation, res)
			fmt.Printf("%-9s %-10s %10.1f ms/sweep  workers=%d eff=%.2f\n",
				lc.name, "swept", res.TotalMS, w, res.ScalingEfficiency)
		}
		l.Cfg.Workers = 1
	}
	return rep
}

// measure times p.Assign over the trace `rounds` times (after one warm-up)
// and returns the best round, the standard way to suppress scheduler noise.
func measure(p policy.RL, tr *trace.Trace, m *costmodel.Model, rounds int) time.Duration {
	if _, err := p.Assign(tr, m, pricing.Hot); err != nil {
		fatal(err)
	}
	best := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := p.Assign(tr, m, pricing.Hot); err != nil {
			fatal(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// measureTraining times a fresh Train run of `steps` environment steps per
// round (after a shorter warm-up run) and returns the best round. Each round
// rebuilds the trainer so step counts, annealing and optimizer state are
// identical across rounds and engines; envs > 1 selects the vectorized
// lockstep engine.
func measureTraining(net rl.NetConfig, tr *trace.Trace, m *costmodel.Model, singleSample bool, steps int64, workers, envs, rounds int) time.Duration {
	cfg := rl.DefaultA3CConfig()
	cfg.Net = net
	cfg.Workers = workers
	cfg.EnvsPerWorker = envs
	cfg.Seed = 7
	cfg.SingleSample = singleSample
	run := func(n int64) time.Duration {
		a3c, err := rl.NewA3C(cfg)
		if err != nil {
			fatal(err)
		}
		src, err := rl.NewTraceSource(m, tr, net.HistLen, mdp.DefaultReward(), pricing.Hot)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if _, err := a3c.TrainFrom(src, n); err != nil {
			fatal(err)
		}
		return time.Since(start)
	}
	warm := steps / 4
	if floor := int64(cfg.NSteps * max(envs, 1)); warm < floor {
		warm = floor // at least one full lockstep rollout
	}
	run(warm)
	best := time.Duration(0)
	for i := 0; i < rounds; i++ {
		if d := run(steps); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func writeReport(path string, rep report) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
