package main

import (
	"fmt"
	"runtime"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// servingResult is one (population, shards, engine) serving measurement.
// Ingest rows report observe throughput; plan rows report latency
// quantiles from an obs histogram and how many files each plan re-decided.
type servingResult struct {
	Config  string `json:"config"`
	HistLen int    `json:"hist_len"`
	Files   int    `json:"files"`
	Shards  int    `json:"shards"`
	Engine  string `json:"engine"` // "ingest", "plan_full" or "plan_incremental"
	Rounds  int    `json:"rounds"`

	Days        int     `json:"days,omitempty"`
	FilesPerSec float64 `json:"observe_files_per_sec,omitempty"`

	P50MS          float64 `json:"plan_p50_ms,omitempty"`
	P99MS          float64 `json:"plan_p99_ms,omitempty"`
	AvgMS          float64 `json:"plan_avg_ms,omitempty"`
	DecidedPerPlan int     `json:"decided_per_plan,omitempty"`
}

// servingNet is the network the serving rows load: the Quick test shape.
// The serving tier's cost drivers — ingest fan-out, feature packing, dirty
// bookkeeping, merge — are network-independent, and the small net keeps the
// 1M-file full-plan rows affordable on one core.
var servingNet = rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}

// benchServing measures the sharded serving state tier directly (no HTTP):
// observe-batch ingestion throughput, then full and incremental plan
// latency, per population and shard count. The incremental rows re-observe
// 1% of the population between plans — the steady-state shape where the
// dirty set is small against the tracked world.
func benchServing(populations []int, rounds int) report {
	rep := report{Benchmark: "serving", GoMaxProc: runtime.GOMAXPROCS(0)}
	const ingestDays = 8 // fills the 7-day window, plus one steady-state sweep
	for pi, files := range populations {
		shardCounts := []int{agentserver.DefaultShards}
		if pi == 0 {
			// Shard sweep on the smallest population: the cross-shard overhead
			// is most visible where per-shard work is cheapest.
			shardCounts = []int{1, 4, agentserver.DefaultShards}
		}
		for _, shards := range shardCounts {
			s, err := agentserver.NewWithConfig(
				rl.NewAgent(servingNet, servingNet.BuildActor(rng.New(7))),
				pricing.Hot, agentserver.Config{Shards: shards})
			if err != nil {
				fatal(err)
			}
			batch := make([]agentserver.FileObservation, files)
			for i := range batch {
				batch[i] = servingObservation(i)
			}

			// Ingest: full-population sweeps, one observe batch per day.
			start := time.Now()
			for d := 0; d < ingestDays; d++ {
				mutateDay(batch, d)
				if _, err := s.Observe(&agentserver.ObserveRequest{Files: batch}); err != nil {
					fatal(err)
				}
			}
			ingest := servingResult{
				Config: "quick16", HistLen: servingNet.HistLen, Files: files,
				Shards: s.Shards(), Engine: "ingest", Rounds: 1, Days: ingestDays,
				FilesPerSec: float64(files*ingestDays) / time.Since(start).Seconds(),
			}
			rep.Serving = append(rep.Serving, ingest)
			fmt.Printf("serving  %8d files  %2d shards  %-16s %12.0f files/s\n",
				files, s.Shards(), "ingest", ingest.FilesPerSec)

			// Full plans: every file re-decided each round.
			full := measureServingPlans(s, true, rounds, func(int) {})
			full.Config, full.HistLen, full.Files, full.Shards = "quick16", servingNet.HistLen, files, s.Shards()
			rep.Serving = append(rep.Serving, full)
			fmt.Printf("serving  %8d files  %2d shards  %-16s p50=%8.1fms p99=%8.1fms (%d decided/plan)\n",
				files, s.Shards(), "plan_full", full.P50MS, full.P99MS, full.DecidedPerPlan)

			// Incremental plans: 1% of the population re-observed per round.
			touch := files / 100
			if touch < 1 {
				touch = 1
			}
			inc := measureServingPlans(s, false, rounds, func(round int) {
				lo := (round * touch) % files
				hi := lo + touch
				if hi > files {
					hi = files
				}
				mutateDay(batch[lo:hi], ingestDays+round)
				if _, err := s.Observe(&agentserver.ObserveRequest{Files: batch[lo:hi]}); err != nil {
					fatal(err)
				}
			})
			inc.Config, inc.HistLen, inc.Files, inc.Shards = "quick16", servingNet.HistLen, files, s.Shards()
			rep.Serving = append(rep.Serving, inc)
			fmt.Printf("serving  %8d files  %2d shards  %-16s p50=%8.1fms p99=%8.1fms (%d decided/plan)\n",
				files, s.Shards(), "plan_incremental", inc.P50MS, inc.P99MS, inc.DecidedPerPlan)
		}
	}
	return rep
}

// measureServingPlans times `rounds` plans through a fresh obs registry and
// folds the latency histogram into a result row. prepare runs before each
// round (the incremental rows use it to dirty a slice of the population);
// one untimed warm-up plan settles post-ingest transitions first.
func measureServingPlans(s *agentserver.Server, fullPlans bool, rounds int, prepare func(round int)) servingResult {
	if _, err := s.BuildPlan(true); err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	timer := reg.Timer("bench_serving_plan_seconds", "Plan latency during the serving bench.")
	decided := 0
	for r := 0; r < rounds; r++ {
		prepare(r)
		sw := timer.Start()
		plan, err := s.BuildPlan(fullPlans)
		sw.Stop()
		if err != nil {
			fatal(err)
		}
		decided += plan.Decided
	}
	h := reg.Snapshot().Histogram("bench_serving_plan_seconds")
	engine := "plan_incremental"
	if fullPlans {
		engine = "plan_full"
	}
	res := servingResult{
		Engine: engine, Rounds: rounds,
		P50MS: h.Quantile(0.5) * 1000, P99MS: h.Quantile(0.99) * 1000,
		DecidedPerPlan: decided / rounds,
	}
	if h.Count > 0 {
		res.AvgMS = h.Sum / float64(h.Count) * 1000
	}
	return res
}

// servingObservation builds file i's baseline measurement with sizes and
// rates spread over the population.
func servingObservation(i int) agentserver.FileObservation {
	r := rng.New(uint64(i)*2654435761 + 97)
	base := r.Float64()
	return agentserver.FileObservation{
		ID:     fmt.Sprintf("f%08d", i),
		SizeGB: 0.01 + base*base*50,
		Reads:  base * 2000,
		Writes: base * 20,
	}
}

// mutateDay drifts a batch's request rates for a new day so every entry
// changes (and therefore dirties) its file.
func mutateDay(batch []agentserver.FileObservation, day int) {
	for i := range batch {
		batch[i].Reads = batch[i].Reads*0.75 + float64(1+(i+day)%7)
		batch[i].Writes = batch[i].Writes*0.75 + float64(1+(i+day)%3)*0.1
	}
}
