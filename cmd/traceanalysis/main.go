// Command traceanalysis reproduces the paper's trace-analysis figures
// (§3.1): Fig. 2 (volatility histogram), Fig. 3 (potential savings per
// σ bucket), Fig. 4 (ARIMA prediction-error distribution).
//
// Usage:
//
//	traceanalysis -fig 2            # one figure
//	traceanalysis -fig all -files 4000 -days 63
package main

import (
	"flag"
	"fmt"
	"os"

	"minicost/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to reproduce: 2, 3, 4 or all")
		files = flag.Int("files", 2000, "number of files")
		days  = flag.Int("days", 63, "trace days")
		seed  = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := experiments.Full()
	cfg.Files = *files
	cfg.Days = *days
	cfg.Seed = *seed
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "2":
			fmt.Println("== Fig 2: files per daily-request-frequency sigma bucket ==")
			lab.Fig2().Render(os.Stdout)
		case "3":
			fmt.Println("== Fig 3: potential saved money per sigma bucket ==")
			r, err := lab.Fig3()
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "4":
			fmt.Println("== Fig 4: ARIMA 7-day prediction error per sigma bucket ==")
			r, err := lab.Fig4()
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		default:
			fatal(fmt.Errorf("unknown figure %q (want 2, 3, 4 or all)", name))
		}
		fmt.Println()
	}
	if *fig == "all" {
		for _, f := range []string{"2", "3", "4"} {
			run(f)
		}
		return
	}
	run(*fig)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceanalysis:", err)
	os.Exit(1)
}
