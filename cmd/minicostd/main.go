// Command minicostd serves a trained MiniCost agent over HTTP — the agent
// server of the paper's §4.2, deployed next to the web application. The web
// application POSTs each day's per-file request statistics to /v1/observe
// and fetches the tier assignment plan from /v1/plan.
//
// The agent comes from a checkpoint written by `minicost-train` (or any
// code calling rl.Agent.Save); without one, minicostd bootstraps by
// training on a synthetic workload so the service is demonstrable out of
// the box.
//
// Usage:
//
//	minicostd -checkpoint agent.ckpt -addr :8080
//	minicostd -bootstrap-steps 200000 -save agent.ckpt
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/core"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		checkpoint = flag.String("checkpoint", "", "agent checkpoint to load")
		save       = flag.String("save", "", "write the (possibly bootstrapped) agent checkpoint here")
		steps      = flag.Int64("bootstrap-steps", 200000, "training steps when bootstrapping without a checkpoint")
		filters    = flag.Int("filters", 32, "conv filters when bootstrapping")
		hidden     = flag.Int("hidden", 64, "hidden neurons when bootstrapping")
	)
	flag.Parse()

	agent, err := loadOrBootstrap(*checkpoint, *steps, *filters, *hidden)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := agent.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "minicostd: checkpoint written to %s\n", *save)
	}

	srv, err := agentserver.New(agent, pricing.Hot)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "minicostd: serving on %s (hist window %d days)\n", *addr, agent.Net.HistLen)
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := server.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// loadOrBootstrap loads a checkpoint or trains a fresh agent on a synthetic
// workload.
func loadOrBootstrap(path string, steps int64, filters, hidden int) (*rl.Agent, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		agent, err := rl.LoadAgent(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "minicostd: loaded agent from %s\n", path)
		return agent, nil
	}
	fmt.Fprintf(os.Stderr, "minicostd: no checkpoint; bootstrapping on a synthetic workload (%d steps)...\n", steps)
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 500
	gen.Days = 42
	tr, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.TrainSteps = steps
	cfg.A3C.Net.Filters = filters
	cfg.A3C.Net.Hidden = hidden
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := sys.Train(tr); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "minicostd: bootstrapped in %s\n", time.Since(start).Round(time.Second))
	return sys.Agent(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicostd:", err)
	os.Exit(1)
}
