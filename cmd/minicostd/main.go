// Command minicostd serves a trained MiniCost agent over HTTP — the agent
// server of the paper's §4.2, deployed next to the web application. The web
// application POSTs each day's per-file request statistics to /v1/observe
// and fetches the tier assignment plan from /v1/plan.
//
// The agent comes from a checkpoint written by `minicost-train` (or any
// code calling rl.Agent.Save); without one, minicostd bootstraps by
// training on a synthetic workload so the service is demonstrable out of
// the box, then replays the bootstrapped policy against the cloudsim store
// so the simulated bill is visible on /metrics.
//
// The daemon enables the process-wide obs registry: /metrics exposes the
// serving, training, and simulation metric families in Prometheus text
// format, /healthz answers liveness, and -pprof mounts the standard
// /debug/pprof handlers. SIGINT/SIGTERM drain in-flight requests through
// server.Shutdown before exit.
//
// Usage:
//
//	minicostd -checkpoint agent.ckpt -addr :8080
//	minicostd -bootstrap-steps 200000 -save agent.ckpt
//	minicostd -pprof -drain 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/core"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		checkpoint = flag.String("checkpoint", "", "agent checkpoint to load")
		save       = flag.String("save", "", "write the (possibly bootstrapped) agent checkpoint here")
		steps      = flag.Int64("bootstrap-steps", 200000, "training steps when bootstrapping without a checkpoint")
		filters    = flag.Int("filters", 32, "conv filters when bootstrapping")
		hidden     = flag.Int("hidden", 64, "hidden neurons when bootstrapping")
		metrics    = flag.Bool("metrics", true, "enable the obs registry and serve /metrics")
		pprofOn    = flag.Bool("pprof", false, "mount /debug/pprof handlers")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		shards     = flag.Int("shards", 0, "tracked-state partitions, rounded up to a power of two (0 = default)")
		maxBody    = flag.Int64("max-observe-bytes", 0, "cap on a /v1/observe request body in bytes (0 = default 8 MiB)")
	)
	flag.Parse()

	// Turn the default-off registry on before bootstrapping so the training
	// and simulation instruments record from the first step.
	obs.Default().SetEnabled(*metrics)

	agent, err := loadOrBootstrap(*checkpoint, *steps, *filters, *hidden)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := agent.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "minicostd: checkpoint written to %s\n", *save)
	}

	srv, err := agentserver.NewWithConfig(agent, pricing.Hot, agentserver.Config{
		Shards:          *shards,
		MaxObserveBytes: *maxBody,
	})
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if *metrics {
		mux.Handle("/metrics", obs.Handler())
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Fprintf(os.Stderr, "minicostd: serving on %s (hist window %d days, %d shards)\n",
		*addr, agent.Net.HistLen, srv.Shards())
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: first SIGINT/SIGTERM drains in-flight requests for
	// up to -drain; a second signal (NotifyContext restores the default
	// handlers once fired) kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "minicostd: shutting down (drain %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- server.Shutdown(sctx)
	}()

	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-drained; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "minicostd: bye")
}

// loadOrBootstrap loads a checkpoint or trains a fresh agent on a synthetic
// workload; after bootstrapping it replays the policy against the cloudsim
// store so the run's simulated bill lands on /metrics.
func loadOrBootstrap(path string, steps int64, filters, hidden int) (*rl.Agent, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		agent, err := rl.LoadAgent(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "minicostd: loaded agent from %s\n", path)
		return agent, nil
	}
	fmt.Fprintf(os.Stderr, "minicostd: no checkpoint; bootstrapping on a synthetic workload (%d steps)...\n", steps)
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 500
	gen.Days = 42
	tr, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.TrainSteps = steps
	cfg.A3C.Net.Filters = filters
	cfg.A3C.Net.Hidden = hidden
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := sys.Train(tr); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "minicostd: bootstrapped in %s\n", time.Since(start).Round(time.Second))
	report, err := sys.Run(tr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "minicostd: bootstrap eval: simulated bill $%.4f over %d days (%d tier changes)\n",
		report.Total.Total(), tr.Days, report.TierChanges)
	return sys.Agent(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicostd:", err)
	os.Exit(1)
}
