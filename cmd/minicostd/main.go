// Command minicostd serves a trained MiniCost agent over HTTP — the agent
// server of the paper's §4.2, deployed next to the web application. The web
// application POSTs each day's per-file request statistics to /v1/observe
// and fetches the tier assignment plan from /v1/plan.
//
// The agent comes from a checkpoint written by `minicost-train` (or any
// code calling rl.Agent.Save), from a learner checkpoint written by the
// online subsystem (-load-checkpoint restores the full trainer state);
// without either, minicostd bootstraps by training on a synthetic workload
// so the service is demonstrable out of the box, then replays the
// bootstrapped policy against the cloudsim store so the simulated bill is
// visible on /metrics.
//
// With -online the daemon closes the serve→train loop (DESIGN.md §17): the
// observe stream feeds a bounded replay buffer, drift against the training
// distribution is scored on /metrics, fine-tune epochs run on a cadence or
// when drift crosses -drift-threshold, and candidates that survive the
// validation gate are hot-swapped into serving (status on /v1/learner and
// /healthz).
//
// The daemon enables the process-wide obs registry: /metrics exposes the
// serving, training, and simulation metric families in Prometheus text
// format, /healthz answers liveness, and -pprof mounts the standard
// /debug/pprof handlers. SIGINT/SIGTERM drain in-flight requests through
// server.Shutdown before exit.
//
// Usage:
//
//	minicostd -checkpoint agent.ckpt -addr :8080
//	minicostd -bootstrap-steps 200000 -save agent.ckpt
//	minicostd -online -finetune-every 16 -checkpoint-dir /var/lib/minicost
//	minicostd -load-checkpoint /var/lib/minicost/learner-0000000003.ckpt -online
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/core"
	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/obs"
	"minicost/internal/online"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		checkpoint = flag.String("checkpoint", "", "agent checkpoint to load (actor only)")
		loadCkpt   = flag.String("load-checkpoint", "", "learner checkpoint to boot from (full trainer state; overrides -checkpoint)")
		save       = flag.String("save", "", "write the (possibly bootstrapped) agent checkpoint here")
		steps      = flag.Int64("bootstrap-steps", 200000, "training steps when bootstrapping without a checkpoint")
		filters    = flag.Int("filters", 32, "conv filters when bootstrapping")
		hidden     = flag.Int("hidden", 64, "hidden neurons when bootstrapping")
		metrics    = flag.Bool("metrics", true, "enable the obs registry and serve /metrics")
		pprofOn    = flag.Bool("pprof", false, "mount /debug/pprof handlers")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		shards     = flag.Int("shards", 0, "tracked-state partitions, rounded up to a power of two (0 = default)")
		maxBody    = flag.Int64("max-observe-bytes", 0, "cap on a /v1/observe request body in bytes (0 = default 8 MiB)")

		onlineOn  = flag.Bool("online", false, "run the continuous-learning loop: buffer observations, fine-tune, hot-swap")
		ftEvery   = flag.Int("finetune-every", 16, "fine-tune epoch cadence in observe batches (0 disables cadence epochs)")
		ftSteps   = flag.Int64("finetune-steps", 2048, "environment steps per fine-tune epoch")
		ftWorkers = flag.Int("finetune-workers", 1, "async workers for fine-tune epochs (1 keeps epochs seed-deterministic)")
		ftEnvs    = flag.Int("finetune-envs", 8, "environments per fine-tune worker (≥2 selects the vectorized rollout engine)")
		ftPar     = flag.Int("finetune-parallelism", 0, "intra-update GEMM fan-out during fine-tuning (0 = serial)")
		driftThr  = flag.Float64("drift-threshold", 0.25, "PSI drift score that triggers a fine-tune epoch (0 disables drift triggering)")
		swapGate  = flag.Bool("swap-gate", true, "require candidates to not regress held-out cost before hot-swapping")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for learner checkpoints (atomic rename + retention); empty disables")
		ckptKeep  = flag.Int("checkpoint-keep", 5, "learner checkpoints to retain (-1 keeps all)")
	)
	flag.Parse()

	// Turn the default-off registry on before bootstrapping so the training
	// and simulation instruments record from the first step.
	obs.Default().SetEnabled(*metrics)

	boot, err := loadOrBootstrap(bootOpts{
		checkpoint:     *checkpoint,
		learnerCkpt:    *loadCkpt,
		steps:          *steps,
		filters:        *filters,
		hidden:         *hidden,
		online:         *onlineOn,
		finetuneConfig: finetuneA3C(*ftWorkers, *ftEnvs, *ftPar),
	})
	if err != nil {
		fatal(err)
	}
	agent := boot.agent
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := agent.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "minicostd: checkpoint written to %s\n", *save)
	}

	srv, err := agentserver.NewWithConfig(agent, pricing.Hot, agentserver.Config{
		Shards:          *shards,
		MaxObserveBytes: *maxBody,
	})
	if err != nil {
		fatal(err)
	}

	var learner *online.Learner
	if *onlineOn {
		learner, err = online.New(online.Config{
			Trainer:        boot.trainer,
			Serving:        srv,
			Model:          boot.model,
			Reward:         mdp.DefaultReward(),
			Initial:        pricing.Hot,
			FinetuneEvery:  *ftEvery,
			FinetuneSteps:  *ftSteps,
			DriftThreshold: *driftThr,
			SwapGate:       *swapGate,
			CheckpointDir:  *ckptDir,
			CheckpointKeep: *ckptKeep,
		})
		if err != nil {
			fatal(err)
		}
		if boot.baseline != nil {
			learner.SetBaselineFromTrace(boot.baseline)
		}
		srv.SetTap(learner)
		learner.Start()
		fmt.Fprintf(os.Stderr, "minicostd: online learner on (cadence %d batches, drift threshold %.3g, gate %v)\n",
			*ftEvery, *driftThr, *swapGate)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	if learner != nil {
		mux.Handle("/v1/learner", learner.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		if learner != nil {
			st := learner.Status()
			fmt.Fprintf(w, "learner: epochs=%d swaps=%d rejected=%d drift=%.4f buffered=%d\n",
				st.Epochs, st.Swaps, st.SwapsRejected, st.DriftScore, st.BufferFiles)
		}
	})
	if *metrics {
		mux.Handle("/metrics", obs.Handler())
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Fprintf(os.Stderr, "minicostd: serving on %s (hist window %d days, %d shards)\n",
		*addr, agent.Net.HistLen, srv.Shards())
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: first SIGINT/SIGTERM drains in-flight requests for
	// up to -drain; a second signal (NotifyContext restores the default
	// handlers once fired) kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "minicostd: shutting down (drain %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- server.Shutdown(sctx)
	}()

	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-drained; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	if learner != nil {
		learner.Stop()
	}
	fmt.Fprintln(os.Stderr, "minicostd: bye")
}

// finetuneA3C is the paper's training configuration with the daemon's
// fine-tune knobs applied: Workers=1 keeps epochs seed-deterministic,
// EnvsPerWorker ≥ 2 selects the vectorized rollout engine, Parallelism
// bounds intra-update GEMM fan-out.
func finetuneA3C(workers, envs, parallelism int) rl.A3CConfig {
	cfg := core.DefaultConfig().A3C
	if workers > 0 {
		cfg.Workers = workers
	}
	cfg.EnvsPerWorker = envs
	cfg.Parallelism = parallelism
	return cfg
}

// bootOpts selects minicostd's policy source.
type bootOpts struct {
	checkpoint     string
	learnerCkpt    string
	steps          int64
	filters        int
	hidden         int
	online         bool
	finetuneConfig rl.A3CConfig
}

// bootState is what serving and the online learner boot from: the serving
// agent, the fine-tune trainer carrying the same actor weights (nil unless
// -online), the cost model, and — on the bootstrap path — the synthetic
// training trace that seeds the drift baseline.
type bootState struct {
	agent    *rl.Agent
	trainer  *rl.A3C
	model    *costmodel.Model
	baseline *trace.Trace
}

// loadOrBootstrap resolves the serving policy: a learner checkpoint (full
// trainer state), an actor checkpoint (fresh critic), or a synthetic
// bootstrap run; after bootstrapping it replays the policy against the
// cloudsim store so the run's simulated bill lands on /metrics. With
// opts.online the returned trainer's published actor is bitwise the serving
// agent's, so the learner's first rollback point and incumbent agree.
func loadOrBootstrap(opts bootOpts) (*bootState, error) {
	model := costmodel.New(pricing.Azure())
	if opts.learnerCkpt != "" {
		f, err := os.Open(opts.learnerCkpt)
		if err != nil {
			return nil, err
		}
		agent, err := rl.LoadAgent(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		st := &bootState{agent: agent, model: model}
		if opts.online {
			cfg := opts.finetuneConfig
			cfg.Net = agent.Net
			st.trainer, err = online.LoadTrainer(cfg, opts.learnerCkpt)
			if err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "minicostd: loaded learner checkpoint %s\n", opts.learnerCkpt)
		return st, nil
	}
	if opts.checkpoint != "" {
		f, err := os.Open(opts.checkpoint)
		if err != nil {
			return nil, err
		}
		agent, err := rl.LoadAgent(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		st := &bootState{agent: agent, model: model}
		if opts.online {
			st.trainer, err = trainerForAgent(opts.finetuneConfig, agent, nil)
			if err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "minicostd: loaded agent from %s\n", opts.checkpoint)
		return st, nil
	}
	fmt.Fprintf(os.Stderr, "minicostd: no checkpoint; bootstrapping on a synthetic workload (%d steps)...\n", opts.steps)
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 500
	gen.Days = 42
	tr, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.TrainSteps = opts.steps
	cfg.A3C.Net.Filters = opts.filters
	cfg.A3C.Net.Hidden = opts.hidden
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := sys.Train(tr); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "minicostd: bootstrapped in %s\n", time.Since(start).Round(time.Second))
	report, err := sys.Run(tr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "minicostd: bootstrap eval: simulated bill $%.4f over %d days (%d tier changes)\n",
		report.Total.Total(), tr.Days, report.TierChanges)
	st := &bootState{agent: sys.Agent(), model: sys.Model(), baseline: tr}
	if opts.online {
		// Training selected the best evaluation snapshot as the serving
		// agent, which can differ from the trainer's final weights; carry
		// the bootstrap trainer's warm critic into the fine-tune trainer.
		ftCfg := opts.finetuneConfig
		ftCfg.Net = cfg.A3C.Net
		_, critic := sys.Trainer().ParamVectors()
		st.trainer, err = trainerForAgent(ftCfg, st.agent, critic)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// trainerForAgent builds a fine-tune trainer whose published actor weights
// are the agent's. critic, when non-nil, warm-starts the value network
// (e.g. from a bootstrap run); nil keeps the fresh initialization.
func trainerForAgent(cfg rl.A3CConfig, agent *rl.Agent, critic []float64) (*rl.A3C, error) {
	cfg.Net = agent.Net
	tr, err := rl.NewA3C(cfg)
	if err != nil {
		return nil, err
	}
	if critic == nil {
		_, critic = tr.ParamVectors()
	}
	if err := tr.SetParamVectors(agent.ParamVector(), critic); err != nil {
		return nil, err
	}
	return tr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicostd:", err)
	os.Exit(1)
}
