// Command loadgen drives an agent server with synthetic observe/plan
// traffic and reports throughput and latency, so the serving tier can be
// load-tested end to end — against a running minicostd (-addr) or an
// in-process server when no address is given.
//
// Each simulated day sweeps the whole population: the day's observations
// are split into -batch sized POSTs issued by -concurrency workers, then
// every -plan-every days a plan is fetched (incremental by default,
// -plan-full for full re-decisions). Observe request and plan latencies
// land in internal/obs histograms; the run ends with a JSON summary on
// stdout.
//
// Usage:
//
//	loadgen -files 100000 -days 8 -plan-every 4
//	loadgen -addr http://localhost:8080 -files 50000 -days 14
//	loadgen -files 1000000 -shards 32 -concurrency 8
//	loadgen -min-observes 1 ...   # exit non-zero unless traffic landed (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// summary is the run report printed as JSON.
type summary struct {
	Target      string `json:"target"` // "in-process" or the -addr URL
	Files       int    `json:"files"`
	Days        int    `json:"days"`
	Batch       int    `json:"batch"`
	Concurrency int    `json:"concurrency"`
	FullPlans   bool   `json:"full_plans"`

	ObservedFileDays   int64   `json:"observed_file_days"`
	ObserveSeconds     float64 `json:"observe_seconds"`
	ObserveFilesPerSec float64 `json:"observe_files_per_sec"`
	ObserveP50MS       float64 `json:"observe_p50_ms"`
	ObserveP99MS       float64 `json:"observe_p99_ms"`

	Plans     int     `json:"plans"`
	PlanP50MS float64 `json:"plan_p50_ms"`
	PlanP99MS float64 `json:"plan_p99_ms"`
	PlanAvgMS float64 `json:"plan_avg_ms"`
	Decided   int64   `json:"decided_total"`

	TrackedFiles int `json:"tracked_files"`
	Shards       int `json:"shards"`
	Duplicates   int `json:"duplicates_total"`
	// DriftFromDay is the first day drawn from the shifted distribution
	// (-drift); -1 when the run did not drift.
	DriftFromDay int `json:"drift_from_day"`
}

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running agent server; empty runs one in-process")
		files       = flag.Int("files", 100000, "files in the synthetic population")
		days        = flag.Int("days", 8, "simulated days (full population sweeps)")
		batch       = flag.Int("batch", 8192, "files per observe request")
		concurrency = flag.Int("concurrency", runtime.GOMAXPROCS(0), "concurrent observe requests")
		planEvery   = flag.Int("plan-every", 4, "fetch a plan every N days (0 = only after the last day)")
		planFull    = flag.Bool("plan-full", false, "request full re-decisions (?full=1) instead of incremental plans")
		shards      = flag.Int("shards", 0, "shard count for the in-process server (0 = default)")
		histLen     = flag.Int("hist", 7, "history window of the in-process server's agent")
		seed        = flag.Uint64("seed", 11, "workload seed")
		drift       = flag.Bool("drift", false, "shift the size/read-rate distributions mid-run (exercises the online drift detector)")
		driftAt     = flag.Float64("drift-at", 0.5, "fraction of -days after which -drift kicks in")
		minObserves = flag.Int64("min-observes", 0, "exit non-zero unless at least this many file-days were ingested")
		out         = flag.String("o", "", "write the JSON summary here instead of stdout")
	)
	flag.Parse()
	if *files < 1 || *days < 1 || *batch < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("files, days, batch and concurrency must be positive"))
	}

	target := *addr
	if target == "" {
		cfg := rl.NetConfig{HistLen: *histLen, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
		agent := rl.NewAgent(cfg, cfg.BuildActor(rng.New(*seed)))
		srv, err := agentserver.NewWithConfig(agent, pricing.Hot, agentserver.Config{Shards: *shards})
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		target = ts.URL
	}
	client := agentserver.NewClient(target)

	reg := obs.NewRegistry()
	obsTimer := reg.Timer("loadgen_observe_seconds", "Observe request latency.")
	planTimer := reg.Timer("loadgen_plan_seconds", "Plan request latency.")

	// With -drift, days from driftDay on draw from a shifted distribution;
	// without it driftDay sits past the run.
	driftDay := *days + 1
	if *drift {
		driftDay = int(float64(*days) * *driftAt)
	}

	sum := summary{
		Files: *files, Days: *days, Batch: *batch,
		Concurrency: *concurrency, FullPlans: *planFull,
	}
	if *drift {
		sum.DriftFromDay = driftDay
	} else {
		sum.DriftFromDay = -1
	}
	if *addr == "" {
		sum.Target = "in-process"
	} else {
		sum.Target = *addr
	}

	fetchPlan := func() {
		sw := planTimer.Start()
		var (
			plan *agentserver.PlanResponse
			err  error
		)
		if *planFull {
			plan, err = client.PlanFull()
		} else {
			plan, err = client.Plan()
		}
		sw.Stop()
		if err != nil {
			fatal(err)
		}
		sum.Plans++
		sum.Decided += int64(plan.Decided)
	}

	// Each day sweeps the population in batch-sized POSTs; workers claim
	// batches off an atomic cursor. Reads follow a per-file deterministic
	// pattern that drifts by day so every sweep dirties every file.
	numBatches := (*files + *batch - 1) / *batch
	workers := *concurrency
	if workers > numBatches {
		workers = numBatches
	}
	observeStart := time.Now()
	for day := 0; day < *days; day++ {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		errs := make([]error, workers)
		dups := make([]int64, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				req := &agentserver.ObserveRequest{Files: make([]agentserver.FileObservation, 0, *batch)}
				for {
					b := int(cursor.Add(1)) - 1
					if b >= numBatches {
						return
					}
					lo := b * *batch
					hi := lo + *batch
					if hi > *files {
						hi = *files
					}
					req.Files = req.Files[:0]
					for i := lo; i < hi; i++ {
						req.Files = append(req.Files, synthObservation(i, day, *seed, day >= driftDay))
					}
					sw := obsTimer.Start()
					resp, err := client.Observe(req)
					sw.Stop()
					if err != nil {
						errs[w] = err
						return
					}
					dups[w] += int64(resp.Duplicates)
					atomic.AddInt64(&sum.ObservedFileDays, int64(hi-lo))
				}
			}(w)
		}
		wg.Wait()
		for w := range errs {
			if errs[w] != nil {
				fatal(errs[w])
			}
			sum.Duplicates += int(dups[w])
		}
		if *planEvery > 0 && (day+1)%*planEvery == 0 {
			fetchPlan()
		}
	}
	sum.ObserveSeconds = time.Since(observeStart).Seconds()
	if sum.Plans == 0 {
		fetchPlan()
	}

	stats, err := client.Stats()
	if err != nil {
		fatal(err)
	}
	sum.TrackedFiles = stats.TrackedFiles
	sum.Shards = stats.Shards

	snap := reg.Snapshot()
	ho := snap.Histogram("loadgen_observe_seconds")
	hp := snap.Histogram("loadgen_plan_seconds")
	sum.ObserveFilesPerSec = float64(sum.ObservedFileDays) / sum.ObserveSeconds
	sum.ObserveP50MS = ho.Quantile(0.5) * 1000
	sum.ObserveP99MS = ho.Quantile(0.99) * 1000
	sum.PlanP50MS = hp.Quantile(0.5) * 1000
	sum.PlanP99MS = hp.Quantile(0.99) * 1000
	if hp.Count > 0 {
		sum.PlanAvgMS = hp.Sum / float64(hp.Count) * 1000
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(&sum); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d file-days in %.2fs (%.0f files/s), %d plans p50=%.1fms p99=%.1fms\n",
		sum.ObservedFileDays, sum.ObserveSeconds, sum.ObserveFilesPerSec, sum.Plans, sum.PlanP50MS, sum.PlanP99MS)

	if sum.ObservedFileDays < *minObserves {
		fatal(fmt.Errorf("ingested %d file-days, below -min-observes %d", sum.ObservedFileDays, *minObserves))
	}
}

// synthObservation builds file i's day-d measurement: sizes spread over
// three orders of magnitude, request rates on a weekly rhythm that drifts
// per day so every sweep changes every file's features. In the drifted
// regime (-drift, once day crosses the threshold) the population goes cold
// and bulky — sizes grow ~8× and read rates collapse ~100× — the archetypal
// shift that makes a hot-trained policy overpay and the PSI detector fire.
func synthObservation(i, d int, seed uint64, drifted bool) agentserver.FileObservation {
	r := rng.New(seed + uint64(i)*2654435761)
	base := r.Float64()
	if drifted {
		return agentserver.FileObservation{
			ID:     fmt.Sprintf("f%08d", i),
			SizeGB: 0.1 + base*base*400,
			Reads:  base * 20 * float64(1+(i+d)%7) / 7,
			Writes: base * 2 * float64(1+(i+d)%3) / 3,
		}
	}
	return agentserver.FileObservation{
		ID:     fmt.Sprintf("f%08d", i),
		SizeGB: 0.01 + base*base*50,
		Reads:  base * 2000 * float64(1+(i+d)%7) / 7,
		Writes: base * 20 * float64(1+(i+d)%3) / 3,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
