// Webapp simulates the paper's motivating scenario (Fig. 1): a web
// application whose media files live in cloud storage and whose traffic
// mixes a small set of viral pages with a long tail of dormant ones,
// including a mid-life "flash crowd" — the request-frequency regime change
// that makes static tiering expensive.
//
// The example builds the workload by hand (no generator) to show the Trace
// data model, trains MiniCost, and reports how each file class ends up
// tiered.
//
//	go run ./examples/webapp
package main

import (
	"fmt"
	"log"
	"math"

	"minicost"
)

const days = 35

// class describes one population of files in the web application.
type class struct {
	name      string
	count     int
	sizeGB    float64
	dailyRate func(day int) float64
}

func main() {
	classes := []class{
		{
			// The landing page's media: always busy, weekly cycle.
			name: "landing", count: 5, sizeGB: 0.25,
			dailyRate: func(d int) float64 {
				return 3000 * (1 + 0.3*math.Sin(2*math.Pi*float64(d)/7))
			},
		},
		{
			// A viral article: dormant, then a flash crowd in week 3 that
			// ramps up over days (as real crowds do) and decays.
			name: "viral", count: 20, sizeGB: 0.1,
			dailyRate: func(d int) float64 {
				switch {
				case d < 14:
					return 0.01
				case d < 17:
					// ramp: 8 -> 80 -> 800
					return 8 * math.Pow(10, float64(d-14))
				case d < 24:
					return 800 * math.Exp(-float64(d-17)/3)
				default:
					return 2
				}
			},
		},
		{
			// The archive of old posts: almost never read.
			name: "dormant", count: 300, sizeGB: 0.12,
			dailyRate: func(d int) float64 { return 0.004 },
		},
		{
			// Steady mid-tail content.
			name: "steady", count: 60, sizeGB: 0.08,
			dailyRate: func(d int) float64 { return 0.5 },
		},
	}

	tr := &minicost.Trace{Days: days}
	var classOf []int
	for ci, c := range classes {
		for k := 0; k < c.count; k++ {
			id := tr.NumFiles()
			tr.Files = append(tr.Files, minicost.TraceFileMeta{ID: id, SizeGB: c.sizeGB})
			reads := make([]float64, days)
			writes := make([]float64, days)
			for d := 0; d < days; d++ {
				reads[d] = c.dailyRate(d)
				writes[d] = reads[d] * 0.01
			}
			tr.Reads = append(tr.Reads, reads)
			tr.Writes = append(tr.Writes, writes)
			classOf = append(classOf, ci)
		}
	}
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 300000
	cfg.A3C.Net.Filters = 32
	cfg.A3C.Net.Hidden = 64
	sys, err := minicost.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on the web application's history...")
	if _, err := sys.Train(tr); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	hot, _ := minicost.EvaluateAssigner(minicost.HotBaseline(), tr, minicost.AzurePricing())
	greedy, _ := minicost.EvaluateAssigner(minicost.GreedyBaseline(), tr, minicost.AzurePricing())
	opt, _ := minicost.EvaluateAssigner(minicost.OptimalBaseline(), tr, minicost.AzurePricing())
	fmt.Printf("\nbill: minicost $%.4f | all-hot $%.4f | greedy $%.4f | offline optimal $%.4f\n",
		report.Total.Total(), hot.Total(), greedy.Total(), opt.Total())
	fmt.Printf("tier changes: %d over %d file-days\n\n", report.TierChanges, tr.NumFiles()*days)

	// Where did each class end up? Re-derive the final-day tier per class
	// using the system's assigner.
	assigner, err := sys.Assigner()
	if err != nil {
		log.Fatal(err)
	}
	asg, err := assigner.Assign(tr, sys.Model(), minicost.Hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %8s %8s %8s   (final-day tier distribution)\n", "class", "hot", "cool", "archive")
	for ci, c := range classes {
		var counts [3]int
		for i := range asg {
			if classOf[i] == ci {
				counts[asg[i][days-1]]++
			}
		}
		fmt.Printf("%-10s %8d %8d %8d\n", c.name, counts[0], counts[1], counts[2])
	}
}
