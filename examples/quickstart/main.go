// Quickstart: generate a small workload, train MiniCost, and compare its
// bill with the paper's baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"minicost"
)

func main() {
	// A workstation-sized workload: 300 files over six weeks, calibrated to
	// the paper's Wikipedia-trace statistics.
	traceCfg := minicost.DefaultTraceConfig()
	traceCfg.NumFiles = 300
	traceCfg.Days = 42
	workload, err := minicost.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train on the first three weeks of history...
	history, err := workload.Window(0, 21)
	if err != nil {
		log.Fatal(err)
	}
	// ...and serve the rest.
	live, err := workload.Window(21, workload.Days)
	if err != nil {
		log.Fatal(err)
	}

	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 400000
	cfg.A3C.Net.Filters = 32 // the paper uses 128; 32 trains in seconds
	cfg.A3C.Net.Hidden = 64
	sys, err := minicost.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the A3C agent...")
	if _, err := sys.Train(history); err != nil {
		log.Fatal(err)
	}

	report, err := sys.Run(live)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %10s\n", "method", "bill ($)")
	for _, b := range []struct {
		name string
		a    minicost.Assigner
	}{
		{"hot", minicost.HotBaseline()},
		{"cold", minicost.ColdBaseline()},
		{"greedy", minicost.GreedyBaseline()},
		{"optimal", minicost.OptimalBaseline()},
	} {
		bd, err := minicost.EvaluateAssigner(b.a, live, minicost.AzurePricing())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.4f\n", b.name, bd.Total())
	}
	fmt.Printf("%-10s %10.4f   (%d tier changes, %s compute)\n",
		"minicost", report.Total.Total(), report.TierChanges, report.TotalDecisionTime().Round(1000000))

	hot, _ := minicost.EvaluateAssigner(minicost.HotBaseline(), live, minicost.AzurePricing())
	saved := hot.Total() - report.Total.Total()
	fmt.Printf("\nsaved vs. keeping everything hot: $%.4f (%.1f%%)\n", saved, 100*saved/hot.Total())
}
