// Agentservice demonstrates the paper's deployment shape (§4.2): the
// MiniCost agent runs as an HTTP service next to the web application, which
// reports each day's per-file request statistics and fetches the tier
// assignment plan.
//
// The example trains a small agent, serves it on a loopback listener, and
// then plays a two-week workload through the HTTP API — the same loop a
// production cron job would run daily.
//
//	go run ./examples/agentservice
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"minicost"
)

func main() {
	// 1. Train a small agent (a real deployment would load a checkpoint).
	traceCfg := minicost.DefaultTraceConfig()
	traceCfg.NumFiles = 200
	traceCfg.Days = 28
	history, err := minicost.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 150000
	cfg.A3C.Net.Filters = 16
	cfg.A3C.Net.Hidden = 32
	sys, err := minicost.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the agent...")
	if _, err := sys.Train(history); err != nil {
		log.Fatal(err)
	}

	// 2. Serve it over HTTP on a loopback port.
	srv, err := minicost.NewAgentServer(sys, minicost.Hot)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("agent service listening on %s\n\n", base)

	// 3. The web application's daily loop: observe, then plan.
	client := minicost.NewAgentClient(base)
	live, err := minicost.GenerateTrace(func() minicost.TraceConfig {
		c := traceCfg
		c.Seed = 99
		c.NumFiles = 50
		c.Days = 14
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}
	totalTransitions := 0
	for day := 0; day < live.Days; day++ {
		obs := make([]minicost.AgentFileObservation, live.NumFiles())
		for i := 0; i < live.NumFiles(); i++ {
			obs[i] = minicost.AgentFileObservation{
				ID:     fmt.Sprintf("file-%03d", i),
				SizeGB: live.Files[i].SizeGB,
				Reads:  live.Reads[i][day],
				Writes: live.Writes[i][day],
			}
		}
		if _, err := client.Observe(&minicost.AgentObserveRequest{Files: obs}); err != nil {
			log.Fatal(err)
		}
		plan, err := client.Plan()
		if err != nil {
			log.Fatal(err)
		}
		totalTransitions += plan.Transition
		if day%7 == 6 {
			fmt.Printf("day %2d: plan for %d files in %.2f ms, %d transitions this day\n",
				day+1, len(plan.Files), plan.ElapsedMS, plan.Transition)
		}
	}
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d plans over %d observations; %d tier transitions executed in total\n",
		stats.PlansServed, stats.Observations, totalTransitions)

	// Show the final placement mix.
	plan, err := client.Plan()
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range plan.Files {
		counts[f.Tier]++
	}
	fmt.Printf("final placement: hot=%d cool=%d archive=%d\n", counts["hot"], counts["cool"], counts["archive"])
}
