// Aggregation demonstrates the paper's §5.2 enhancement: files that are
// requested concurrently (assets of one webpage) can be aggregated into a
// replica object so one request replaces many, trading extra storage for
// fewer billed operations. The example scores every group's aggregation
// coefficient Ω (Eq. 16), shows the Eq. 15 threshold in action, and runs
// MiniCost with and without the enhancement.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"
	"sort"

	"minicost"
)

func main() {
	traceCfg := minicost.DefaultTraceConfig()
	traceCfg.NumFiles = 400
	traceCfg.Days = 28
	// Plenty of head traffic and groups so several clear the Eq. 15 bar.
	traceCfg.HeadFraction = 0.1
	traceCfg.GroupFraction = 0.5
	workload, err := minicost.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d files, %d concurrency groups\n\n", workload.NumFiles(), len(workload.Groups))

	// Score each group's weekly-average concurrency against Eq. 15/16.
	type scored struct {
		members int
		rdc     float64
		omega   float64
	}
	p := minicost.AzurePricing()
	upDay := p.Tiers[minicost.Hot].StoragePerGBMonth / 30.44
	urf := p.Tiers[minicost.Hot].ReadPer10K / 10000
	var scores []scored
	for _, g := range workload.Groups {
		sum, size := 0.0, 0.0
		for d := 0; d < 7; d++ {
			sum += g.Concurrent[d]
		}
		rdc := sum / 7
		for _, m := range g.Members {
			size += workload.Files[m].SizeGB
		}
		omega := float64(len(g.Members)-1)*rdc/size - upDay/urf
		scores = append(scores, scored{members: len(g.Members), rdc: rdc, omega: omega})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].omega > scores[j].omega })
	fmt.Printf("%-8s %10s %12s   (top and bottom groups by Eq. 16)\n", "members", "rdc/day", "omega")
	show := scores
	if len(show) > 5 {
		show = append(append([]scored{}, scores[:3]...), scores[len(scores)-2:]...)
	}
	for _, s := range show {
		verdict := "skip"
		if s.omega > 0 {
			verdict = "AGGREGATE"
		}
		fmt.Printf("%-8d %10.2f %12.2f   %s\n", s.members, s.rdc, s.omega, verdict)
	}

	// Train ONE agent, then serve the workload twice — with and without the
	// enhancement — so the comparison isolates aggregation from training
	// variance.
	fmt.Println("\ntraining and serving (this takes a minute)...")
	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 250000
	cfg.A3C.Net.Filters = 32
	cfg.A3C.Net.Hidden = 64
	trainer, err := minicost.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Train(workload); err != nil {
		log.Fatal(err)
	}
	run := func(withE bool) *minicost.RunReport {
		sysCfg := cfg
		if withE {
			agg := minicost.DefaultAggregationConfig()
			sysCfg.Aggregation = &agg
		}
		sys, err := minicost.New(sysCfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.SetAgent(trainer.Agent())
		report, err := sys.Run(workload)
		if err != nil {
			log.Fatal(err)
		}
		return report
	}
	plain := run(false)
	enhanced := run(true)
	fmt.Printf("\nminicost          : $%.4f\n", plain.Total.Total())
	fmt.Printf("minicost w/E      : $%.4f (%d groups aggregated)\n",
		enhanced.Total.Total(), enhanced.AggregatedGroups)
	diff := plain.Total.Total() - enhanced.Total.Total()
	fmt.Printf("enhancement saved : $%.4f\n", diff)
}
