// Multicloud prices the same workload under several CSP / datacenter price
// schedules and shows how the optimal tiering plan — and the money MiniCost
// can save — shifts with the schedule. This exercises the paper's remark
// (§4.2.1) that the tier set Γ and prices extend to multiple CSPs.
//
//	go run ./examples/multicloud
package main

import (
	"fmt"
	"log"

	"minicost"
)

// schedule builds a named variant of the Azure schedule.
func schedule(name string, mutate func(*minicost.PricingPolicy)) *minicost.PricingPolicy {
	p := minicost.AzurePricing()
	p.Name = name
	if mutate != nil {
		mutate(p)
	}
	if err := p.Validate(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return p
}

func main() {
	traceCfg := minicost.DefaultTraceConfig()
	traceCfg.NumFiles = 400
	traceCfg.Days = 28
	workload, err := minicost.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}

	providers := []*minicost.PricingPolicy{
		schedule("azure-us-west", nil),
		// A provider with pricey hot storage (archive looks better).
		schedule("provider-b-expensive-hot", func(p *minicost.PricingPolicy) {
			p.Tiers[minicost.Hot].StoragePerGBMonth *= 2
		}),
		// A provider with cheap retrieval (cool/archive look better).
		schedule("provider-c-cheap-retrieval", func(p *minicost.PricingPolicy) {
			p.Tiers[minicost.Cool].RetrievalPerGB /= 5
			p.Tiers[minicost.Archive].RetrievalPerGB /= 5
		}),
		// A provider with free tier transitions (re-tiering is risk-free).
		schedule("provider-d-free-moves", func(p *minicost.PricingPolicy) {
			p.TransitionPerGB = 0
		}),
	}

	fmt.Printf("%-28s %12s %12s %12s %10s\n", "provider", "all-hot $", "greedy $", "optimal $", "saving")
	for _, p := range providers {
		hot, err := minicost.EvaluateAssigner(minicost.HotBaseline(), workload, p)
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := minicost.EvaluateAssigner(minicost.GreedyBaseline(), workload, p)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := minicost.EvaluateAssigner(minicost.OptimalBaseline(), workload, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.4f %12.4f %12.4f %9.1f%%\n",
			p.Name, hot.Total(), greedy.Total(), opt.Total(), 100*(hot.Total()-opt.Total())/hot.Total())
	}

	// A workload genuinely spread across datacenters: partition-aware
	// evaluation bills every file under its own datacenter's schedule
	// (the paper's §4.1 multi-datacenter setting).
	catalog := minicost.NewCatalog()
	for i, p := range providers {
		_ = i
		if err := catalog.Add(p.Name, p); err != nil {
			log.Fatal(err)
		}
	}
	deployment, err := minicost.NewDeployment(catalog, providers[0].Name)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := minicost.AssignDatacenters(workload, []string{providers[0].Name, providers[1].Name})
	if err != nil {
		log.Fatal(err)
	}
	bills, total, err := deployment.Evaluate(minicost.OptimalBaseline(), spread, minicost.Hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfiles spread across two datacenters (optimal policy per datacenter):")
	for _, b := range bills {
		fmt.Printf("  %-28s %5d files  $%.4f\n", b.Datacenter, b.Files, b.Cost.Total())
	}
	fmt.Printf("  %-28s %5s       $%.4f\n", "total", "", total.Total())

	// Train one MiniCost agent against the provider with the widest
	// optimisation headroom and show it realises most of that headroom.
	target := providers[1] // expensive hot storage: biggest saving potential
	fmt.Printf("\ntraining a MiniCost agent for %s...\n", target.Name)
	cfg := minicost.DefaultConfig()
	cfg.Pricing = target
	cfg.TrainSteps = 400000
	cfg.A3C.Net.Filters = 32
	cfg.A3C.Net.Hidden = 64
	sys, err := minicost.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(workload); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	hot, _ := minicost.EvaluateAssigner(minicost.HotBaseline(), workload, target)
	opt, _ := minicost.EvaluateAssigner(minicost.OptimalBaseline(), workload, target)
	fmt.Printf("%-28s minicost $%.4f (all-hot $%.4f, optimal $%.4f, %d tier changes)\n",
		target.Name, report.Total.Total(), hot.Total(), opt.Total(), report.TierChanges)
}
