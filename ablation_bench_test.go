// Ablation benchmarks for the design choices DESIGN.md calls out: the
// reward shaping, the training stabilizers (logit decay, sticky
// exploration, reward normalization), worker scaling, and the aggregation
// Ψ knob. Each reports the resulting evaluation cost (normalized by the
// all-hot baseline, lower is better) or throughput as a custom metric.
//
//	go test -bench=Ablation
package minicost_test

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// ablationWorkload is a small fixed workload shared by the ablations.
func ablationWorkload(b *testing.B) (*trace.Trace, *costmodel.Model, float64) {
	b.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 150
	cfg.Days = 21
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	hot, _, err := policy.Evaluate(policy.Static{Tier: pricing.Hot}, tr, m, pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	return tr, m, hot.Total()
}

func ablationTrainCfg() rl.A3CConfig {
	cfg := rl.DefaultA3CConfig()
	cfg.Net = rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
	cfg.Workers = 2
	cfg.Seed = 5
	return cfg
}

// trainAndScore trains under trainCfg/reward and returns cost / all-hot.
func trainAndScore(b *testing.B, trainCfg rl.A3CConfig, reward mdp.RewardConfig, steps int64) float64 {
	b.Helper()
	tr, m, hot := ablationWorkload(b)
	a3c, err := rl.NewA3C(trainCfg)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := rl.TraceFactory(m, tr, trainCfg.Net.HistLen, reward, pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a3c.Train(factory, steps); err != nil {
		b.Fatal(err)
	}
	bd, _, err := rl.EvaluateAgent(a3c.Snapshot(), m, tr, trainCfg.Net.HistLen, pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	return bd.Total() / hot
}

const ablationSteps = 120000

// BenchmarkAblationRewardPaper trains with the paper's reciprocal reward
// (Eq. 4, auto-α + cap).
func BenchmarkAblationRewardPaper(b *testing.B) {
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, ablationTrainCfg(), mdp.DefaultReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationRewardNegCost trains with the linear −α·C shaping.
func BenchmarkAblationRewardNegCost(b *testing.B) {
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, ablationTrainCfg(), mdp.NegCostReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationRewardUncapped removes the MaxRatio cap from Eq. 4 (the
// configuration that lets cheap-file rewards dominate training).
func BenchmarkAblationRewardUncapped(b *testing.B) {
	reward := mdp.DefaultReward()
	reward.MaxRatio = 0
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, ablationTrainCfg(), reward, ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationNoLogitDecay disables the saturation guard.
func BenchmarkAblationNoLogitDecay(b *testing.B) {
	cfg := ablationTrainCfg()
	cfg.LogitDecay = 0
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, cfg, mdp.DefaultReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationNoStickyExploration uses per-step ε-greedy (ExploreHold
// 1), the setting under which entering a cheap tier never looks good.
func BenchmarkAblationNoStickyExploration(b *testing.B) {
	cfg := ablationTrainCfg()
	cfg.ExploreHold = 1
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, cfg, mdp.DefaultReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationNoRewardNorm disables running reward standardization.
func BenchmarkAblationNoRewardNorm(b *testing.B) {
	cfg := ablationTrainCfg()
	cfg.NormalizeRewards = false
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, cfg, mdp.DefaultReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationNoConvFrontEnd shrinks the conv front-end to a single
// filter, approximating its removal while keeping the architecture legal.
func BenchmarkAblationNoConvFrontEnd(b *testing.B) {
	cfg := ablationTrainCfg()
	cfg.Net.Filters = 1
	var score float64
	for i := 0; i < b.N; i++ {
		score = trainAndScore(b, cfg, mdp.DefaultReward(), ablationSteps)
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationDQN trains the replay-based DQN (Algorithm 1's literal
// loop) instead of A3C on the same budget, for a learner-family comparison.
func BenchmarkAblationDQN(b *testing.B) {
	var score float64
	for i := 0; i < b.N; i++ {
		tr, m, hot := ablationWorkload(b)
		cfg := rl.DefaultDQNConfig()
		cfg.Net = ablationTrainCfg().Net
		cfg.Seed = 5
		d, err := rl.NewDQN(cfg)
		if err != nil {
			b.Fatal(err)
		}
		factory, err := rl.TraceFactory(m, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Train(factory, ablationSteps); err != nil {
			b.Fatal(err)
		}
		bd, _, err := rl.EvaluateAgent(d.Agent(), m, tr, cfg.Net.HistLen, pricing.Hot)
		if err != nil {
			b.Fatal(err)
		}
		score = bd.Total() / hot
	}
	b.ReportMetric(score, "cost/hot")
}

// BenchmarkAblationWorkers measures training throughput scaling with the
// number of asynchronous workers.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			tr, m, _ := ablationWorkload(b)
			cfg := ablationTrainCfg()
			cfg.Workers = workers
			a3c, err := rl.NewA3C(cfg)
			if err != nil {
				b.Fatal(err)
			}
			factory, err := rl.TraceFactory(m, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := a3c.Train(factory, int64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationAggregationPsi sweeps the Ψ cap on aggregated groups and
// reports the optimal-policy cost on the rewritten trace relative to no
// aggregation.
func BenchmarkAblationAggregationPsi(b *testing.B) {
	l := benchLabGet(b)
	for _, psi := range []int{1, 4, 16, 64} {
		b.Run(benchName("psi", psi), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := l.Fig13(psi)
				if err != nil {
					b.Fatal(err)
				}
				last := len(r.Days) - 1
				ratio = r.Costs["minicost-w/E"][last] / r.Costs["minicost"][last]
			}
			b.ReportMetric(ratio, "withE/plain")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
